// Package gpu models the NVIDIA GPU architectures the paper evaluates on —
// Tesla A100 (Ampere) and Tesla V100 (Volta) — at the level of detail the
// auto-tuner can observe: per-SM resource limits that determine occupancy,
// and throughput/latency headline numbers that drive the execution-time
// model in package sim.
//
// This package is the hardware half of the substitution documented in
// DESIGN.md: the tuner treats the simulated GPU exactly as it would treat
// real hardware, observing only (setting → time, metrics).
package gpu

import "fmt"

// Arch captures one GPU generation's resource and throughput envelope.
// Numbers follow the public A100/V100 whitepapers cited by the paper.
type Arch struct {
	Name string

	// SM topology.
	SMs      int // number of streaming multiprocessors
	WarpSize int

	// Per-SM scheduling limits (CUDA occupancy calculator inputs).
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	MaxWarpsPerSM      int
	RegistersPerSM     int // 32-bit registers
	MaxRegsPerThread   int // hard compile cap; beyond this a kernel cannot build
	SpillRegsPerThread int // above this, ptxas spills to local memory

	// Memories.
	SharedMemPerSM    int // bytes available for shared memory per SM
	SharedMemPerBlock int // bytes a single block may allocate
	L2Bytes           int
	ConstantBytes     int

	// Throughputs.
	ClockGHz        float64
	FP64PerSM       int     // FP64 lanes per SM
	DRAMBandwidthGB float64 // GB/s
	L2BandwidthGB   float64 // GB/s aggregate
	SharedBWPerSMGB float64 // GB/s per SM

	// Latency-ish constants (nanoseconds / microseconds).
	DRAMLatencyNS    float64
	BarrierCostNS    float64 // block-wide __syncthreads cost
	LaunchOverheadUS float64 // kernel launch fixed cost
}

// A100 returns the NVIDIA Tesla A100 (SXM4 40GB) model, the paper's primary
// platform (Table II).
func A100() *Arch {
	return &Arch{
		Name:     "A100",
		SMs:      108,
		WarpSize: 32,

		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		MaxWarpsPerSM:      64,
		RegistersPerSM:     65536,
		MaxRegsPerThread:   255,
		SpillRegsPerThread: 192,

		SharedMemPerSM:    167936, // 164 KB
		SharedMemPerBlock: 166912, // 163 KB opt-in max
		L2Bytes:           40 << 20,
		ConstantBytes:     64 << 10,

		ClockGHz:        1.41,
		FP64PerSM:       32,
		DRAMBandwidthGB: 1555,
		L2BandwidthGB:   4500,
		SharedBWPerSMGB: 128,

		DRAMLatencyNS:    470,
		BarrierCostNS:    28,
		LaunchOverheadUS: 3.5,
	}
}

// V100 returns the NVIDIA Tesla V100 (SXM2 16GB) model used for the
// portability study (paper Sec. V-D).
func V100() *Arch {
	return &Arch{
		Name:     "V100",
		SMs:      80,
		WarpSize: 32,

		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		MaxWarpsPerSM:      64,
		RegistersPerSM:     65536,
		MaxRegsPerThread:   255,
		SpillRegsPerThread: 168,

		SharedMemPerSM:    98304, // 96 KB
		SharedMemPerBlock: 98304,
		L2Bytes:           6 << 20,
		ConstantBytes:     64 << 10,

		ClockGHz:        1.53,
		FP64PerSM:       32,
		DRAMBandwidthGB: 900,
		L2BandwidthGB:   2500,
		SharedBWPerSMGB: 110,

		DRAMLatencyNS:    440,
		BarrierCostNS:    33,
		LaunchOverheadUS: 4.0,
	}
}

// ByName resolves "a100"/"v100" (case-insensitive first letter tolerated).
func ByName(name string) (*Arch, error) {
	switch name {
	case "a100", "A100":
		return A100(), nil
	case "v100", "V100":
		return V100(), nil
	}
	return nil, fmt.Errorf("gpu: unknown architecture %q (want a100 or v100)", name)
}

// PeakFP64GFLOPS returns the architecture's peak double-precision rate.
func (a *Arch) PeakFP64GFLOPS() float64 {
	// Each FP64 lane retires one FMA (2 FLOPs) per cycle.
	return float64(a.SMs) * float64(a.FP64PerSM) * a.ClockGHz * 2
}

// Occupancy is the result of the occupancy calculation for one kernel
// configuration.
type Occupancy struct {
	BlocksPerSM   int
	WarpsPerBlock int
	WarpsPerSM    int
	Achieved      float64 // warpsPerSM / MaxWarpsPerSM, in [0,1]
	Limiter       string  // which resource bound blocksPerSM: threads|blocks|registers|shared
}

// ComputeOccupancy runs the CUDA occupancy calculation: how many blocks of
// the given size co-reside on one SM given register and shared-memory use.
// Register allocation granularity is modelled per warp (256-register
// granularity), matching nvcc's allocation units closely enough for tuning.
func (a *Arch) ComputeOccupancy(threadsPerBlock, regsPerThread, sharedPerBlock int) (Occupancy, error) {
	if threadsPerBlock <= 0 {
		return Occupancy{}, fmt.Errorf("gpu: non-positive block size %d", threadsPerBlock)
	}
	if threadsPerBlock > 1024 {
		return Occupancy{}, fmt.Errorf("gpu: block size %d exceeds 1024", threadsPerBlock)
	}
	if regsPerThread <= 0 {
		regsPerThread = 1
	}
	if sharedPerBlock < 0 {
		return Occupancy{}, fmt.Errorf("gpu: negative shared memory %d", sharedPerBlock)
	}
	if sharedPerBlock > a.SharedMemPerBlock {
		return Occupancy{}, fmt.Errorf("gpu: shared memory %dB exceeds per-block max %dB", sharedPerBlock, a.SharedMemPerBlock)
	}
	if regsPerThread > a.MaxRegsPerThread {
		return Occupancy{}, fmt.Errorf("gpu: %d registers/thread exceeds cap %d", regsPerThread, a.MaxRegsPerThread)
	}

	warpsPerBlock := ceilDiv(threadsPerBlock, a.WarpSize)

	byThreads := a.MaxThreadsPerSM / (warpsPerBlock * a.WarpSize)
	byBlocks := a.MaxBlocksPerSM
	// Registers allocate in 256-register warp granules.
	regsPerWarp := roundUp(regsPerThread*a.WarpSize, 256)
	byRegs := a.RegistersPerSM / (regsPerWarp * warpsPerBlock)
	byShared := a.MaxBlocksPerSM
	if sharedPerBlock > 0 {
		byShared = a.SharedMemPerSM / sharedPerBlock
	}

	blocks := byThreads
	limiter := "threads"
	if byBlocks < blocks {
		blocks, limiter = byBlocks, "blocks"
	}
	if byRegs < blocks {
		blocks, limiter = byRegs, "registers"
	}
	if byShared < blocks {
		blocks, limiter = byShared, "shared"
	}
	if blocks < 1 {
		return Occupancy{}, fmt.Errorf("gpu: configuration fits zero blocks per SM (limiter %s)", limiter)
	}

	warpsPerSM := blocks * warpsPerBlock
	if warpsPerSM > a.MaxWarpsPerSM {
		warpsPerSM = a.MaxWarpsPerSM
	}
	return Occupancy{
		BlocksPerSM:   blocks,
		WarpsPerBlock: warpsPerBlock,
		WarpsPerSM:    warpsPerSM,
		Achieved:      float64(warpsPerSM) / float64(a.MaxWarpsPerSM),
		Limiter:       limiter,
	}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func roundUp(v, g int) int { return ceilDiv(v, g) * g }
