package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v,%v want 5", m, err)
	}
	v, err := Variance(xs)
	if err != nil || v != 4 {
		t.Fatalf("Variance = %v,%v want 4", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || sd != 2 {
		t.Fatalf("StdDev = %v,%v want 2", sd, err)
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Fatalf("Variance(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := CV(nil); err != ErrEmpty {
		t.Fatalf("CV(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := PCC(nil, nil); err != ErrEmpty {
		t.Fatalf("PCC(nil,nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
}

func TestCV(t *testing.T) {
	// Constant data: CV must be zero.
	cv, err := CV([]float64{3, 3, 3})
	if err != nil || cv != 0 {
		t.Fatalf("CV(const) = %v,%v want 0,nil", cv, err)
	}
	// Known value: sd=2, mean=5 -> 0.4.
	cv, err = CV([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almostEq(cv, 0.4, 1e-12) {
		t.Fatalf("CV = %v,%v want 0.4", cv, err)
	}
	// Zero mean is undefined.
	if _, err := CV([]float64{-1, 1}); err != ErrZeroMean {
		t.Fatalf("CV zero-mean err = %v, want ErrZeroMean", err)
	}
	// Negative mean uses |mu| so CV stays non-negative.
	cv, err = CV([]float64{-2, -4, -4, -4, -5, -5, -7, -9})
	if err != nil || !almostEq(cv, 0.4, 1e-12) {
		t.Fatalf("CV(neg) = %v,%v want 0.4", cv, err)
	}
}

func TestPCC(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive linear correlation.
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PCC(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Fatalf("PCC = %v,%v want 1", r, err)
	}
	// Perfect negative linear correlation.
	ys = []float64{10, 8, 6, 4, 2}
	r, err = PCC(xs, ys)
	if err != nil || !almostEq(r, -1, 1e-12) {
		t.Fatalf("PCC = %v,%v want -1", r, err)
	}
	// Constant series is defined as zero correlation.
	r, err = PCC(xs, []float64{7, 7, 7, 7, 7})
	if err != nil || r != 0 {
		t.Fatalf("PCC(const) = %v,%v want 0", r, err)
	}
	if _, err := PCC(xs, ys[:3]); err != ErrLength {
		t.Fatalf("PCC length err = %v, want ErrLength", err)
	}
}

func TestPCCBounded(t *testing.T) {
	f := func(a []float64) bool {
		if len(a) < 2 {
			return true
		}
		n := len(a) / 2
		xs, ys := a[:n], a[n:2*n]
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r, err := PCC(xs, ys)
		if err != nil {
			return false
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRSE(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	pred := []float64{1, 2, 3, 4}
	r, err := RSE(obs, pred, 1)
	if err != nil || r != 0 {
		t.Fatalf("RSE perfect = %v,%v want 0", r, err)
	}
	pred = []float64{2, 3, 4, 5} // each residual 1, RSS=4, n-p=3
	r, err = RSE(obs, pred, 1)
	if err != nil || !almostEq(r, math.Sqrt(4.0/3.0), 1e-12) {
		t.Fatalf("RSE = %v,%v", r, err)
	}
	// Saturated fit reports +Inf so it is never selected.
	r, err = RSE(obs, pred, 4)
	if err != nil || !math.IsInf(r, 1) {
		t.Fatalf("RSE saturated = %v,%v want +Inf", r, err)
	}
	if _, err := RSE(obs, pred[:2], 1); err != ErrLength {
		t.Fatalf("RSE length err = %v", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if m, _ := Min(xs); m != -1 {
		t.Fatalf("Min = %v", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Fatalf("Max = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q, _ := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q, _ := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("q0.5 = %v", q)
	}
	if q, _ := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q0.25 = %v", q)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile(1.5) should error")
	}
	// Input must not be reordered.
	if xs[0] != 1 || xs[4] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestTopN(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	top := TopN(xs, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopN = %v", top)
		}
	}
	if got := TopN(xs, 99); len(got) != 5 {
		t.Fatalf("TopN over-capped len = %d", len(got))
	}
	if got := TopN(xs, -1); len(got) != 0 {
		t.Fatalf("TopN(-1) len = %d", len(got))
	}
	if xs[0] != 5 {
		t.Fatal("TopN mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	xs := []float64{0, 0.1, 0.2, 0.5, 0.99, 1.0, -0.5, 1.5}
	counts, err := Histogram(xs, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 1, 0, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", counts, want)
		}
	}
	if _, err := Histogram(xs, []float64{1}); err == nil {
		t.Fatal("single edge should error")
	}
	if _, err := Histogram(xs, []float64{0, 0}); err == nil {
		t.Fatal("non-increasing edges should error")
	}
}

func TestHistogramConservation(t *testing.T) {
	f := func(raw []float64) bool {
		edges := []float64{0, 0.25, 0.5, 0.75, 1.0}
		inRange := 0
		var xs []float64
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			v = math.Abs(math.Mod(v, 2)) // spread over [0,2)
			xs = append(xs, v)
			if v >= 0 && v <= 1 {
				inRange++
			}
		}
		counts, err := Histogram(xs, edges)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == inRange
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	fr := Normalize([]int{1, 3})
	if !almostEq(fr[0], 0.25, 1e-12) || !almostEq(fr[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", fr)
	}
	fr = Normalize([]int{0, 0})
	if fr[0] != 0 || fr[1] != 0 {
		t.Fatalf("Normalize zeros = %v", fr)
	}
}

func TestPow2Helpers(t *testing.T) {
	if !IsPow2(1) || !IsPow2(1024) || IsPow2(0) || IsPow2(3) || IsPow2(-4) {
		t.Fatal("IsPow2 misbehaves")
	}
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
	ps := Pow2sUpTo(16)
	want := []int{1, 2, 4, 8, 16}
	if len(ps) != len(want) {
		t.Fatalf("Pow2sUpTo = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Pow2sUpTo = %v", ps)
		}
	}
	if got := Pow2sUpTo(0); got != nil {
		t.Fatalf("Pow2sUpTo(0) = %v, want nil", got)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must generate same sequence")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestSplitMix64Float64Range(t *testing.T) {
	g := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestMix64Stateless(t *testing.T) {
	if Mix64(5) != Mix64(5) {
		t.Fatal("Mix64 must be deterministic")
	}
	if Mix64(5) == Mix64(6) {
		t.Fatal("Mix64 adjacent inputs should differ")
	}
}

func BenchmarkCV(b *testing.B) {
	xs := make([]float64, 1024)
	g := NewSplitMix64(1)
	for i := range xs {
		xs[i] = g.Float64() + 0.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CV(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCC(b *testing.B) {
	xs := make([]float64, 1024)
	ys := make([]float64, 1024)
	g := NewSplitMix64(1)
	for i := range xs {
		xs[i] = g.Float64()
		ys[i] = g.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PCC(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
