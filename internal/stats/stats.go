// Package stats provides the statistical kernels used across the csTuner
// pipeline: coefficient of variation (parameter grouping and approximation
// stopping, paper Eq. 1), Pearson correlation coefficient (metric
// combination, paper Eq. 2), residual standard error (PMNF model selection),
// and small helpers shared by the tuner and the experiment harness.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no observations.
var ErrEmpty = errors.New("stats: empty sample")

// ErrZeroMean is returned by CV when the sample mean is zero, which would
// make the coefficient of variation undefined.
var ErrZeroMean = errors.New("stats: zero mean, CV undefined")

// ErrLength is returned when paired samples have mismatched lengths.
var ErrLength = errors.New("stats: mismatched sample lengths")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance (divisor n) of xs, matching the
// paper's Eq. 1 which uses 1/n.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CV returns the coefficient of variation sigma/mu (paper Eq. 1). A higher
// CV means a lower correlation between the swept parameter pair, or a less
// converged top-n fitness set in the approximation stop rule.
func CV(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, ErrZeroMean
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / math.Abs(m), nil
}

// PCC returns the Pearson correlation coefficient between paired samples
// (paper Eq. 2). It returns 0 when either sample is constant, treating a
// degenerate metric as uncorrelated rather than failing the pipeline.
func PCC(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLength
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy)), nil
}

// RSE returns the residual standard error of a fit with p estimated
// coefficients: sqrt(RSS / (n - p)). The paper selects PMNF candidate
// functions by minimum RSE because R^2 is only meaningful for linear models.
// When n <= p the fit is saturated and RSE is reported as +Inf so that model
// selection never prefers an under-determined function.
func RSE(observed, predicted []float64, p int) (float64, error) {
	if len(observed) != len(predicted) {
		return 0, ErrLength
	}
	n := len(observed)
	if n == 0 {
		return 0, ErrEmpty
	}
	if n <= p {
		return math.Inf(1), nil
	}
	rss := 0.0
	for i := range observed {
		d := observed[i] - predicted[i]
		rss += d * d
	}
	return math.Sqrt(rss / float64(n-p)), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// TopN returns the n smallest values of xs in ascending order (n capped at
// len(xs)). Used by the GA approximation rule over top-n fitness values.
func TopN(xs []float64, n int) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n > len(s) {
		n = len(s)
	}
	if n < 0 {
		n = 0
	}
	return s[:n]
}

// Histogram bins xs into len(edges)-1 bins with half-open intervals
// [edges[i], edges[i+1]), the final bin closed on the right. Values outside
// the edge range are dropped. It returns per-bin counts.
func Histogram(xs []float64, edges []float64) ([]int, error) {
	if len(edges) < 2 {
		return nil, errors.New("stats: need at least two bin edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, errors.New("stats: bin edges must be strictly increasing")
		}
	}
	counts := make([]int, len(edges)-1)
	last := len(counts) - 1
	for _, x := range xs {
		if x < edges[0] || x > edges[len(edges)-1] {
			continue
		}
		if x == edges[len(edges)-1] {
			counts[last]++
			continue
		}
		// Binary search for the containing bin.
		i := sort.SearchFloat64s(edges, x)
		if i < len(edges) && edges[i] == x {
			// Exact edge hit: belongs to the bin starting at that edge.
			counts[i]++
		} else {
			counts[i-1]++
		}
	}
	return counts, nil
}

// Normalize divides each count by the total and returns fractions; an all-
// zero histogram normalizes to all-zero fractions.
func Normalize(counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// Log2 returns log2(x). Parameter values in the tuner are >= 1 by
// construction (paper Sec. IV-B starts bool/enum parameters at 1 so the log
// is legitimate); callers must uphold that invariant.
func Log2(x float64) float64 { return math.Log2(x) }

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// NextPow2 returns the smallest power of two >= v (v >= 1).
func NextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Pow2sUpTo returns all powers of two in [1, max].
func Pow2sUpTo(max int) []int {
	var out []int
	for p := 1; p <= max; p <<= 1 {
		out = append(out, p)
	}
	return out
}
