package stats

// SplitMix64 is a tiny, fast, deterministic PRNG used where the simulator
// needs hash-quality per-setting noise without the bookkeeping of math/rand.
// It is the splitmix64 generator of Steele et al., commonly used to seed
// xoshiro-family generators.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// Mix64 hashes x through one splitmix64 round; a convenient stateless
// integer hash for seeding per-setting noise deterministically.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
