package journal

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/vfs"
)

// chaosEpisodes is the fixed history every checkpoint-sweep journal carries.
func chaosEpisodes(k int) []Episode {
	eps := make([]Episode, k)
	for i := range eps {
		eps[i] = Episode{
			Key: fmt.Sprintf("setting-%02d", i), Class: ClassOK,
			MS: float64(i) + 0.5, MSSum: float64(i) + 0.5,
			Attempts: 1, Calls: 1, CostS: 1,
		}
	}
	return eps
}

// buildChaosJournal creates a journal on fsys and appends the fixed history.
func buildChaosJournal(t *testing.T, fsys vfs.FS, path string, eps []Episode) *Journal {
	t.Helper()
	j, err := CreateFS(fsys, path, "chaos-fp")
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		if err := j.Append(ep); err != nil {
			t.Fatal(err)
		}
	}
	return j
}

// TestCheckpointFaultSweep proves checkpoint compaction's temp-file + rename
// replacement is atomic under every single-op disk fault: EIO, ENOSPC and a
// short write injected at each filesystem operation of the compaction in
// turn. Whatever the fault, reopening the journal must recover the complete
// episode history — either from the old multi-frame log (checkpoint never
// landed) or from the new compacted file (checkpoint fully landed), never a
// hybrid — and a failed checkpoint must leave the journal appendable.
func TestCheckpointFaultSweep(t *testing.T) {
	eps := chaosEpisodes(7)
	sum := Summary{Evaluations: len(eps)}

	// Enumeration pass: count the ops one checkpoint costs. The workload is
	// deterministic, so the same indices address the same ops in every run.
	counter := vfs.NewFaultFS(vfs.OS, 0)
	j := buildChaosJournal(t, counter, filepath.Join(t.TempDir(), "j.wal"), eps)
	pre := counter.Ops()
	if err := j.Checkpoint(sum); err != nil {
		t.Fatal(err)
	}
	ckptOps := counter.Ops() - pre
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if ckptOps < 5 {
		t.Fatalf("checkpoint cost only %d ops; the sweep would prove nothing", ckptOps)
	}

	flavors := []struct {
		name  string
		fault vfs.Fault
	}{
		{"eio", vfs.Fault{Err: vfs.EIO()}},
		{"enospc", vfs.Fault{Err: vfs.ENoSpace()}},
		{"short", vfs.Fault{Op: vfs.OpWrite, Err: vfs.EIO(), Short: true}},
	}
	extra := Episode{Key: "post-fault", Class: ClassOK, MS: 9, MSSum: 9, Attempts: 1, Calls: 1, CostS: 1}
	for _, fl := range flavors {
		for i := int64(0); i < ckptOps; i++ {
			ctx := fmt.Sprintf("flavor=%s op=%d", fl.name, i)
			f := fl.fault
			f.AtIndex = pre + i
			ff := vfs.NewFaultFS(vfs.OS, 0, f)
			path := filepath.Join(t.TempDir(), "j.wal")
			j := buildChaosJournal(t, ff, path, eps)

			want := append([]Episode(nil), eps...)
			cerr := j.Checkpoint(sum)
			if cerr != nil {
				// A failed compaction must not wedge the log: the old file is
				// still authoritative and appendable.
				if err := j.Append(extra); err != nil {
					t.Fatalf("%s: append after failed checkpoint: %v", ctx, err)
				}
				want = append(want, extra)
			}
			_ = j.Close()

			re, err := OpenFS(vfs.OS, path, "chaos-fp")
			if err != nil {
				t.Fatalf("%s: reopen after checkpoint fault (err=%v): %v", ctx, cerr, err)
			}
			if got := re.Recovered(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: recovered history diverged (checkpoint err=%v)\n got: %d episodes %+v\nwant: %d episodes",
					ctx, cerr, len(got), got, len(want))
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCheckpointPowerCutSweep cuts the power at each op of a checkpoint
// compaction: unsynced bytes are dropped (the in-flight temp file torn in
// half) and every later op fails. The reopened journal must carry either the
// full pre-checkpoint history or the full compacted one.
func TestCheckpointPowerCutSweep(t *testing.T) {
	eps := chaosEpisodes(5)
	sum := Summary{Evaluations: len(eps)}

	counter := vfs.NewFaultFS(vfs.OS, 0)
	j := buildChaosJournal(t, counter, filepath.Join(t.TempDir(), "j.wal"), eps)
	pre := counter.Ops()
	if err := j.Checkpoint(sum); err != nil {
		t.Fatal(err)
	}
	ckptOps := counter.Ops() - pre
	_ = j.Close()

	for _, keep := range []float64{0, 0.5} {
		for i := int64(0); i <= ckptOps; i++ {
			ctx := fmt.Sprintf("keep=%g cut=%d", keep, i)
			ff := vfs.NewFaultFS(vfs.OS, 0)
			path := filepath.Join(t.TempDir(), "j.wal")
			j := buildChaosJournal(t, ff, path, eps)
			ff.CutAt(pre+i, keep)
			_ = j.Checkpoint(sum) // dies somewhere inside; the model decides where
			_ = j.Close()

			re, err := OpenFS(vfs.OS, path, "chaos-fp")
			if err != nil {
				t.Fatalf("%s: reopen after power cut: %v", ctx, err)
			}
			if got := re.Recovered(); !reflect.DeepEqual(got, eps) {
				t.Fatalf("%s: recovered history diverged\n got: %d episodes\nwant: %d episodes", ctx, len(got), len(eps))
			}
			_ = re.Close()
		}
	}
}
