package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecord throws arbitrary bytes at Open: whatever the file
// holds, Open must recover a prefix or fail with a clean error — never
// panic, never hang. When it does open, the round-trip property must hold:
// appending an episode and reopening recovers exactly the recovered prefix
// plus the new episode.
func FuzzJournalRecord(f *testing.F) {
	// Seed corpus: a real journal, its header alone, torn and corrupted
	// variants, and adversarial non-journals.
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.wal")
	j, err := Create(seedPath, "fuzz-fp")
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Episode{Key: string(rune('a' + i)), Class: ClassOK, MS: float64(i) + 0.5, MSSum: float64(i) + 0.5, Attempts: 1, Calls: 1, CostS: 1.5}); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Checkpoint(Summary{Evaluations: 3}); err != nil {
		f.Fatal(err)
	}
	if err := j.Append(Episode{Key: "d", Class: ClassTransient, Err: "flaky", Attempts: 3, Calls: 3, Transient: 3, BackoffS: 1.5, CostS: 1.505}); err != nil {
		f.Fatal(err)
	}
	j.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:frameHeaderLen+3])
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Add([]byte{})
	f.Add([]byte("go test fuzz corpus is not a journal"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		jr, err := Open(p, "fuzz-fp")
		if err != nil {
			// Any failure must be a wrapped journal error, never a panic
			// (a panic fails the fuzz run on its own).
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrFingerprint) {
				t.Fatalf("unclassified open error: %v", err)
			}
			return
		}
		before := jr.Recovered()
		extra := Episode{Key: "fuzz-appended", Class: ClassOK, MS: 1, MSSum: 1, Attempts: 1, Calls: 1, CostS: 1.503}
		if err := jr.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		jr.Close()
		jr2, err := Open(p, "fuzz-fp")
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer jr2.Close()
		after := jr2.Recovered()
		if len(after) != len(before)+1 {
			t.Fatalf("round trip: %d episodes before append, %d after", len(before), len(after))
		}
		for i := range before {
			if after[i] != before[i] {
				t.Fatalf("round trip changed episode %d: %+v != %+v", i, after[i], before[i])
			}
		}
		if after[len(after)-1] != extra {
			t.Fatalf("appended episode mangled: %+v", after[len(after)-1])
		}
	})
}
