// Package journal is the crash-safe write-ahead log behind resumable tuning
// campaigns. Real campaigns die mid-run — node preemption, OOM kills, an
// operator's Ctrl-C — and every measurement already paid for is lost with
// them. The journal makes the measurement history durable: the engine
// appends one record per finished evaluation episode *before* the episode's
// effects reach any in-memory state, so a run killed at any instant can be
// replayed deterministically up to its last durable record.
//
// On-disk format. The file is a sequence of frames:
//
//	[u32le payload length][u32le CRC32C of payload][payload]
//
// The payload is a JSON-encoded tagged record: a header (magic, version,
// campaign fingerprint), an evaluation episode, or a checkpoint. Appends are
// fsync'd, so a crash can tear at most the final frame; Open verifies every
// frame's CRC and truncates the torn tail back to the last intact record.
// Corruption of the header itself (or a fingerprint that does not match the
// resuming campaign's configuration) fails cleanly — never a panic, and
// never a silently wrong resume.
//
// Checkpoints compact the log: every CheckpointEvery appended episodes the
// journal rewrites itself as [header][checkpoint] — the checkpoint frame
// carrying the full compacted episode history plus a summary of the engine
// state (stats counters, budget meter, quarantine set) — via the classic
// temp-file + rename + directory-fsync dance, so the file is replaced
// atomically and subsequent episodes append after the checkpoint.
//
// The journal stores measurement *outcomes*, not engine state machines:
// resume works by re-running the (deterministic) campaign from the start
// while the engine serves recorded episodes from the journal instead of the
// objective (see internal/engine and DESIGN.md §6).
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

const (
	// Magic identifies a csTuner campaign journal.
	Magic = "csjournal"
	// Version is the current record-format version.
	Version = 1

	// maxPayload bounds a single frame; anything larger is corruption (a
	// torn or flipped length prefix), not a legitimate record.
	maxPayload = 64 << 20

	frameHeaderLen = 8
)

// DefaultCheckpointEvery is the default compaction period, in appended
// episodes. Checkpoints trade a full rewrite against faster recovery and a
// bounded frame count; campaigns are measurement-bound, so a rewrite every
// few dozen episodes is noise.
const DefaultCheckpointEvery = 64

var (
	// ErrCorrupt is returned when the journal header (or a checkpoint the
	// history depends on) cannot be trusted. Tail corruption is not an
	// error: torn tails are truncated and the intact prefix recovered.
	ErrCorrupt = errors.New("journal: corrupt journal")
	// ErrFingerprint is returned when the journal was written by a campaign
	// with a different configuration fingerprint: replaying it into the
	// resuming run would silently produce garbage.
	ErrFingerprint = errors.New("journal: campaign fingerprint mismatch")
	// ErrClosed is returned by operations on a closed journal.
	ErrClosed = errors.New("journal: closed")
)

// Episode outcome classes. Cancellation is deliberately absent: a cancelled
// episode is the shutdown itself, charges nothing, and is never journaled.
const (
	ClassOK        = "ok"
	ClassTransient = "transient"
	ClassPermanent = "permanent"
	ClassBudget    = "budget"
	// ClassStore marks an episode served from the cross-campaign result
	// store instead of the objective: MS/MSSum are valid, but the episode
	// charged zero virtual cost. Journaling the hit (rather than the probe)
	// makes resume independent of how the shared store grew since the
	// original run: replay re-serves the recorded hit and never re-probes.
	ClassStore = "store"
)

// Header identifies the campaign a journal belongs to.
type Header struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// Fingerprint is an opaque campaign-identity string (stencil, arch,
	// configuration, seed, budget). Open refuses a journal whose
	// fingerprint differs from the resuming campaign's.
	Fingerprint string `json:"fingerprint"`
}

// Episode is one durable evaluation-episode record: the outcome of up to
// MaxAttempts measurement attempts at one setting, exactly as the engine
// accounted it.
type Episode struct {
	// Key is the measured setting's space.Setting.Key().
	Key string `json:"key"`
	// Class is the outcome class (ClassOK/Transient/Permanent/Budget).
	Class string `json:"class"`
	// MS is the scored kernel time (the median across repeats) and MSSum
	// the summed repeat time the cost model charges; both valid only for
	// ClassOK.
	MS    float64 `json:"ms,omitempty"`
	MSSum float64 `json:"ms_sum,omitempty"`
	// Err is the failure message for non-OK classes.
	Err string `json:"err,omitempty"`
	// Attempts is the number of retry-loop attempts the episode used;
	// Calls the number of objective invocations (attempts × repeats on the
	// success path). Calls lets a resumed run restore per-setting state in
	// stateful objectives (see engine.AttemptRestorer).
	Attempts int `json:"attempts"`
	Calls    int `json:"calls"`
	// Transient and Timeouts are the episode's transient-failure and
	// deadline-expiry counts; BackoffS the virtual retry backoff charged.
	Transient int     `json:"transient,omitempty"`
	Timeouts  int     `json:"timeouts,omitempty"`
	BackoffS  float64 `json:"backoff_s,omitempty"`
	// CostS is the total virtual cost the engine charged for the episode
	// (backoff plus compile/run or check cost). Informational: replay
	// recomputes the charge from the same inputs, and the cost model is
	// pinned by the campaign fingerprint.
	CostS float64 `json:"cost_s"`
}

// Summary is the engine-state snapshot stored alongside a checkpoint's
// compacted history: the budget meter, the counter block, and the
// quarantine set. It exists for observability and post-mortem tooling; the
// authoritative resume state is the episode history itself.
type Summary struct {
	SpentS          float64  `json:"spent_s"`
	BudgetS         float64  `json:"budget_s"`
	Evaluations     int      `json:"evaluations"`
	CacheHits       int      `json:"cache_hits"`
	Invalid         int      `json:"invalid"`
	BudgetTrips     int      `json:"budget_trips"`
	Transient       int      `json:"transient"`
	Retries         int      `json:"retries"`
	Timeouts        int      `json:"timeouts"`
	Quarantined     int      `json:"quarantined"`
	QuarantineSkips int      `json:"quarantine_skips"`
	Canceled        int      `json:"canceled"`
	StoreHits       int      `json:"store_hits,omitempty"`
	StoreMisses     int      `json:"store_misses,omitempty"`
	WarmStartSeeds  int      `json:"warm_start_seeds,omitempty"`
	BestKey         string   `json:"best_key,omitempty"`
	BestMS          float64  `json:"best_ms,omitempty"`
	Quarantine      []string `json:"quarantine,omitempty"`
	// WallUnixNano stamps when the checkpoint was taken, read through the
	// engine's injectable clock (engine.Clock) — forensic only, never
	// replayed, and deterministic under a fake clock.
	WallUnixNano int64 `json:"wall_unix_nano,omitempty"`
}

// Checkpoint is one compaction point: the full episode history up to it,
// plus the engine summary at the moment it was taken.
type Checkpoint struct {
	Episodes []Episode `json:"episodes"`
	Summary  Summary   `json:"summary"`
}

// record is the tagged union every frame payload decodes into.
type record struct {
	T    string      `json:"t"` // "hdr", "ep" or "ckpt"
	Hdr  *Header     `json:"hdr,omitempty"`
	Ep   *Episode    `json:"ep,omitempty"`
	Ckpt *Checkpoint `json:"ckpt,omitempty"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is one campaign's crash-safe measurement log. It is safe for
// concurrent use; the engine appends under its own accounting lock, so
// record order matches accounting order.
type Journal struct {
	mu        sync.Mutex
	fs        vfs.FS
	path      string
	f         vfs.File
	hdr       Header
	history   []Episode // full campaign history: recovered + appended
	recovered int       // len(history) at Open time
	sinceCkpt int
	ckptEvery int
	closed    bool

	// dirSyncErrs counts directory-fsync failures (create and checkpoint
	// rename). These were once silently dropped; they are now counted so
	// the engine can surface them as a degradation signal — the data is
	// still durable in the file, but the *name* may not survive a power
	// loss. Atomic so the engine can fold it into Stats without nesting
	// locks with j.mu.
	dirSyncErrs atomic.Int64

	// OnDurable, when set, is called (outside locks held by callers, but
	// under the journal's own) after every durable write — an append's
	// fsync or a checkpoint's rename — with the current record count. It
	// exists for crash-matrix tests that snapshot the file at every
	// durable point; production code leaves it nil.
	OnDurable func(records int)
}

// Create starts a fresh journal at path, failing if the file exists.
func Create(path, fingerprint string) (*Journal, error) {
	return CreateFS(vfs.OS, path, fingerprint)
}

// CreateFS is Create through an explicit filesystem seam.
func CreateFS(fsys vfs.FS, path, fingerprint string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	j := &Journal{
		fs:        fsys,
		path:      path,
		f:         f,
		hdr:       Header{Magic: Magic, Version: Version, Fingerprint: fingerprint},
		ckptEvery: DefaultCheckpointEvery,
	}
	if err := j.writeFrame(record{T: "hdr", Hdr: &j.hdr}); err != nil {
		_ = f.Close()
		// Best-effort cleanup of the half-created file; if it survives,
		// OpenOrCreate treats a zero-length journal as never-created.
		_ = fsys.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: sync: %w", err)
	}
	j.syncDir()
	return j, nil
}

// Open opens an existing journal for resume: it validates the header,
// rejects a foreign fingerprint (unless fingerprint is empty, which skips
// the check), replays checkpoints and episode frames into the recovered
// history, truncates any torn tail back to the last intact frame, and
// positions the file for further appends.
func Open(path, fingerprint string) (*Journal, error) {
	return OpenFS(vfs.OS, path, fingerprint)
}

// OpenFS is Open through an explicit filesystem seam.
func OpenFS(fsys vfs.FS, path, fingerprint string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: read: %w", err)
	}

	// The header frame must be intact and trusted; everything after it is
	// recoverable.
	payload, next, err := readFrame(data, 0)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: unreadable header frame: %v", ErrCorrupt, err)
	}
	var hr record
	if err := json.Unmarshal(payload, &hr); err != nil || hr.T != "hdr" || hr.Hdr == nil {
		_ = f.Close()
		return nil, fmt.Errorf("%w: first frame is not a journal header", ErrCorrupt)
	}
	hdr := *hr.Hdr
	if hdr.Magic != Magic {
		_ = f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr.Magic)
	}
	if hdr.Version > Version || hdr.Version < 1 {
		_ = f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr.Version)
	}
	if fingerprint != "" && hdr.Fingerprint != fingerprint {
		_ = f.Close()
		return nil, fmt.Errorf("%w:\n  journal: %s\n  campaign: %s", ErrFingerprint, hdr.Fingerprint, fingerprint)
	}

	var history []Episode
	good := next
	for next < len(data) {
		payload, n, err := readFrame(data, next)
		if err != nil {
			break // torn or corrupt tail: recover the intact prefix
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		switch r.T {
		case "ep":
			if r.Ep == nil {
				err = fmt.Errorf("episode frame without episode")
			} else {
				history = append(history, *r.Ep)
			}
		case "ckpt":
			if r.Ckpt == nil {
				err = fmt.Errorf("checkpoint frame without checkpoint")
			} else {
				// A checkpoint compacts everything before it.
				history = append([]Episode(nil), r.Ckpt.Episodes...)
			}
		default:
			err = fmt.Errorf("unknown record type %q", r.T)
		}
		if err != nil {
			break
		}
		next = n
		good = n
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: seek: %w", err)
	}
	return &Journal{
		fs:        fsys,
		path:      path,
		f:         f,
		hdr:       hdr,
		history:   history,
		recovered: len(history),
		ckptEvery: DefaultCheckpointEvery,
	}, nil
}

// OpenOrCreate resumes the journal at path when it exists and starts a
// fresh one otherwise — the ergonomic entry point for "just re-run the
// same command after a crash" campaigns.
func OpenOrCreate(path, fingerprint string) (*Journal, error) {
	return OpenOrCreateFS(vfs.OS, path, fingerprint)
}

// OpenOrCreateFS is OpenOrCreate through an explicit filesystem seam. A
// zero-length existing file is the artifact of a crash between create and
// the header fsync — zero durable frames — so it is removed and recreated
// rather than rejected as corrupt.
func OpenOrCreateFS(fsys vfs.FS, path, fingerprint string) (*Journal, error) {
	if fi, err := fsys.Stat(path); err == nil {
		if fi.Size() == 0 {
			if err := fsys.Remove(path); err != nil {
				return nil, fmt.Errorf("journal: remove empty journal: %w", err)
			}
			return CreateFS(fsys, path, fingerprint)
		}
		return OpenFS(fsys, path, fingerprint)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: stat: %w", err)
	}
	return CreateFS(fsys, path, fingerprint)
}

// readFrame decodes the frame starting at off and returns its payload and
// the offset of the next frame.
func readFrame(data []byte, off int) ([]byte, int, error) {
	if off+frameHeaderLen > len(data) {
		return nil, 0, fmt.Errorf("short frame header at %d", off)
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n == 0 || n > maxPayload {
		return nil, 0, fmt.Errorf("implausible frame length %d at %d", n, off)
	}
	start := off + frameHeaderLen
	if start+n > len(data) {
		return nil, 0, fmt.Errorf("short frame payload at %d", off)
	}
	payload := data[start : start+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("crc mismatch at %d", off)
	}
	return payload, start + n, nil
}

// writeFrame marshals and appends one frame at the current file position.
func (j *Journal) writeFrame(r record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	return nil
}

// Append durably logs one evaluation episode: the frame is written and
// fsync'd before Append returns, so a crash after it can always replay the
// episode.
func (j *Journal) Append(ep Episode) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.writeFrame(record{T: "ep", Ep: &ep}); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.history = append(j.history, ep)
	j.sinceCkpt++
	if j.OnDurable != nil {
		//cstlint:allow lockcall(OnDurable's documented contract is test-only, fast, and runs under j.mu by design)
		j.OnDurable(len(j.history))
	}
	return nil
}

// SetCheckpointEvery sets the compaction period in appended episodes;
// n <= 0 disables automatic checkpoints.
func (j *Journal) SetCheckpointEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ckptEvery = n
}

// MaybeCheckpoint compacts the log when the checkpoint period has elapsed
// since the last compaction; otherwise it is a no-op. The engine calls it
// after every accounted episode with its current state summary.
func (j *Journal) MaybeCheckpoint(sum Summary) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.ckptEvery <= 0 || j.sinceCkpt < j.ckptEvery {
		return nil
	}
	return j.checkpointLocked(sum)
}

// Checkpoint forces a compaction now.
func (j *Journal) Checkpoint(sum Summary) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.checkpointLocked(sum)
}

// checkpointLocked rewrites the journal as [header][checkpoint] through a
// temp file renamed over the original, so the journal is replaced
// atomically: a crash at any instant leaves either the old intact file or
// the new intact file, never a hybrid.
func (j *Journal) checkpointLocked(sum Summary) error {
	tmpPath := j.path + ".tmp"
	tmp, err := j.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: checkpoint temp: %w", err)
	}
	nj := &Journal{fs: j.fs, path: tmpPath, f: tmp}
	cp := Checkpoint{Episodes: j.history, Summary: sum}
	if err := nj.writeFrame(record{T: "hdr", Hdr: &j.hdr}); err != nil {
		_ = tmp.Close()
		// Leftover tmp cleanup is best-effort: the next checkpoint opens it
		// with O_TRUNC, and recovery never reads *.tmp.
		_ = j.fs.Remove(tmpPath)
		return err
	}
	if err := nj.writeFrame(record{T: "ckpt", Ckpt: &cp}); err != nil {
		_ = tmp.Close()
		_ = j.fs.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = j.fs.Remove(tmpPath)
		return fmt.Errorf("journal: checkpoint sync: %w", err)
	}
	if err := j.fs.Rename(tmpPath, j.path); err != nil {
		_ = tmp.Close()
		_ = j.fs.Remove(tmpPath)
		return fmt.Errorf("journal: checkpoint rename: %w", err)
	}
	j.syncDir()
	_ = j.f.Close() // old pre-compaction handle; the rename made tmp authoritative
	j.f = tmp
	j.sinceCkpt = 0
	if j.OnDurable != nil {
		//cstlint:allow lockcall(OnDurable's documented contract is test-only, fast, and runs under j.mu by design)
		j.OnDurable(len(j.history))
	}
	return nil
}

// Recovered returns the episodes recovered at Open time — the replay set a
// resumed engine consumes. A freshly created journal recovers nothing.
func (j *Journal) Recovered() []Episode {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Episode(nil), j.history[:j.recovered]...)
}

// Records returns the number of episodes in the campaign history
// (recovered plus appended).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.history)
}

// Fingerprint returns the campaign fingerprint stored in the header.
func (j *Journal) Fingerprint() string { return j.hdr.Fingerprint }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle. Appends already returned were durable
// before Close; there is nothing to flush.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// syncDir fsyncs the directory containing the journal so a rename or
// create is durable. A failure does not abort the operation — the data
// already hit the file — but it is no longer silently dropped: it is
// counted in dirSyncErrs and surfaced through DirSyncErrs (and from there
// the engine's Stats), because an unsynced directory entry is exactly the
// kind of quiet durability erosion an operator should see.
func (j *Journal) syncDir() {
	if err := vfs.SyncDirOf(j.fs, j.path); err != nil {
		j.dirSyncErrs.Add(1)
	}
}

// DirSyncErrs returns the number of directory-fsync failures so far —
// appends and checkpoints that are durable in the file but whose directory
// entry may not survive a power loss.
func (j *Journal) DirSyncErrs() int64 { return j.dirSyncErrs.Load() }
