package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "campaign.wal")
}

func mustCreate(t *testing.T, path, fp string) *Journal {
	t.Helper()
	j, err := Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func ep(key string, ms float64) Episode {
	return Episode{Key: key, Class: ClassOK, MS: ms, MSSum: ms, Attempts: 1, Calls: 1, CostS: 1.5 + 3*ms/1000}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp1")
	want := []Episode{
		ep("1,2,3", 4.5),
		{Key: "9,9,9", Class: ClassPermanent, Err: "bad setting", Attempts: 1, Calls: 1, CostS: 0.005},
		{Key: "1,2,4", Class: ClassTransient, Err: "flaky", Attempts: 3, Calls: 3, Transient: 3, BackoffS: 1.25, CostS: 1.255},
		{Key: "0,0,1", Class: ClassBudget, Err: "budget exhausted", Attempts: 1, Calls: 1, CostS: 0.005},
	}
	for _, e := range want {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(want) {
		t.Fatalf("Records = %d, want %d", j.Records(), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Recovered()
	if len(got) != len(want) {
		t.Fatalf("recovered %d episodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("episode %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFingerprintMismatchRefused(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp-original")
	if err := j.Append(ep("1", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, "fp-different"); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Open with wrong fingerprint: err = %v, want ErrFingerprint", err)
	}
	// Empty fingerprint skips the check (inspection tooling).
	r, err := Open(path, "")
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if r.Fingerprint() != "fp-original" {
		t.Fatalf("Fingerprint = %q", r.Fingerprint())
	}
}

func TestOpenOrCreate(t *testing.T) {
	path := tmpPath(t)
	j, err := OpenOrCreate(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Recovered()) != 0 {
		t.Fatal("fresh journal recovered episodes")
	}
	if err := j.Append(ep("1", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenOrCreate(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(j2.Recovered()) != 1 {
		t.Fatalf("recovered %d episodes, want 1", len(j2.Recovered()))
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp")
	j.SetCheckpointEvery(0) // manual checkpoints only
	var want []Episode
	for i := 0; i < 10; i++ {
		e := ep(string(rune('a'+i)), float64(i))
		want = append(want, e)
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := countFrames(t, path); got != 11 { // header + 10 episodes
		t.Fatalf("pre-checkpoint frames = %d, want 11", got)
	}
	if err := j.Checkpoint(Summary{Evaluations: 10, SpentS: 42}); err != nil {
		t.Fatal(err)
	}
	if got := countFrames(t, path); got != 2 { // header + checkpoint
		t.Fatalf("post-checkpoint frames = %d, want 2", got)
	}
	// Appends continue after the checkpoint rewrite.
	extra := ep("post-ckpt", 99)
	want = append(want, extra)
	if err := j.Append(extra); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Recovered()
	if len(got) != len(want) {
		t.Fatalf("recovered %d episodes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("episode %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func countFrames(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for off := 0; off < len(data); {
		_, next, err := readFrame(data, off)
		if err != nil {
			t.Fatalf("frame %d at %d: %v", frames, off, err)
		}
		off = next
		frames++
	}
	return frames
}

func TestAutomaticCheckpointEvery(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp")
	j.SetCheckpointEvery(4)
	for i := 0; i < 10; i++ {
		if err := j.Append(ep(string(rune('a'+i)), float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := j.MaybeCheckpoint(Summary{Evaluations: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Checkpoints fired at episodes 4 and 8, so the file holds header +
	// checkpoint + episodes 9 and 10 — not the 11 frames of a raw log.
	if frames := countFrames(t, path); frames != 4 {
		t.Fatalf("automatic checkpoints did not compact: %d frames, want 4", frames)
	}
	r, err := Open(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Recovered()) != 10 {
		t.Fatalf("recovered %d episodes, want 10", len(r.Recovered()))
	}
}

func TestOnDurableHookFires(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp")
	var counts []int
	j.OnDurable = func(n int) { counts = append(counts, n) }
	for i := 0; i < 3; i++ {
		if err := j.Append(ep(string(rune('a'+i)), 1)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if len(counts) != 3 || counts[2] != 3 {
		t.Fatalf("OnDurable counts = %v", counts)
	}
}

func TestClosedJournalRefusesWrites(t *testing.T) {
	path := tmpPath(t)
	j := mustCreate(t, path, "fp")
	j.Close()
	if err := j.Append(ep("a", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := j.Checkpoint(Summary{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// writeJournal builds a journal with n episodes and returns its raw bytes.
func writeJournal(t *testing.T, n int) (string, []byte) {
	t.Helper()
	path := tmpPath(t)
	j := mustCreate(t, path, "fp")
	for i := 0; i < n; i++ {
		if err := j.Append(ep(string(rune('a'+i)), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestCorruptionRecovery is the corruption table: every mutilation either
// recovers the intact prefix or fails with a clean typed error — never a
// panic, never silently-wrong episodes.
func TestCorruptionRecovery(t *testing.T) {
	_, data := writeJournal(t, 3)
	// Locate frame boundaries for surgical corruption.
	var bounds []int // offset of each frame start, then len(data)
	for off := 0; off < len(data); {
		bounds = append(bounds, off)
		_, next, err := readFrame(data, off)
		if err != nil {
			t.Fatal(err)
		}
		off = next
	}
	bounds = append(bounds, len(data))
	if len(bounds) != 5 { // header + 3 episodes + EOF
		t.Fatalf("expected 4 frames, got %d", len(bounds)-1)
	}

	cases := []struct {
		name      string
		mutate    func([]byte) []byte
		recovered int  // episodes expected when err == nil
		corrupt   bool // expect ErrCorrupt
	}{
		{
			name:      "truncated tail mid-frame",
			mutate:    func(b []byte) []byte { return b[:bounds[3]+5] },
			recovered: 2,
		},
		{
			name:      "truncated at frame boundary",
			mutate:    func(b []byte) []byte { return b[:bounds[2]] },
			recovered: 1,
		},
		{
			name: "flipped CRC byte in last episode",
			mutate: func(b []byte) []byte {
				b[bounds[3]+4] ^= 0xff
				return b
			},
			recovered: 2,
		},
		{
			name: "flipped payload byte in middle episode drops the tail",
			mutate: func(b []byte) []byte {
				b[bounds[2]+frameHeaderLen+2] ^= 0x01
				return b
			},
			recovered: 1,
		},
		{
			name: "zero-length record",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[bounds[3]:bounds[3]+4], 0)
				return b
			},
			recovered: 2,
		},
		{
			name: "implausible record length",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[bounds[3]:bounds[3]+4], 1<<30)
				return b
			},
			recovered: 2,
		},
		{
			name:    "corrupted header frame",
			mutate:  func(b []byte) []byte { b[frameHeaderLen+1] ^= 0xff; return b },
			corrupt: true,
		},
		{
			name:    "empty file",
			mutate:  func(b []byte) []byte { return nil },
			corrupt: true,
		},
		{
			name:    "garbage file",
			mutate:  func(b []byte) []byte { return []byte("not a journal at all") },
			corrupt: true,
		},
		{
			name: "header frame holds a non-header record",
			mutate: func(b []byte) []byte {
				// Drop the header frame so an episode frame comes first.
				return b[bounds[1]:]
			},
			corrupt: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "mutant.wal")
			buf := append([]byte(nil), data...)
			if err := os.WriteFile(p, tc.mutate(buf), 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := Open(p, "fp")
			if tc.corrupt {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("err = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if got := len(j.Recovered()); got != tc.recovered {
				t.Fatalf("recovered %d episodes, want %d", got, tc.recovered)
			}
			// The torn tail was truncated: the journal must accept appends
			// and recover them on the next open.
			if err := j.Append(ep("appended-after-recovery", 7)); err != nil {
				t.Fatal(err)
			}
			j.Close()
			j2, err := Open(p, "fp")
			if err != nil {
				t.Fatalf("reopen after recovery append: %v", err)
			}
			defer j2.Close()
			rec := j2.Recovered()
			if len(rec) != tc.recovered+1 || rec[len(rec)-1].Key != "appended-after-recovery" {
				t.Fatalf("after recovery append, recovered %d episodes (last %+v)", len(rec), rec[len(rec)-1])
			}
		})
	}
}

// TestEveryPrefixOpensCleanly sweeps every byte-length prefix of a real
// journal: each either opens (recovering some prefix of the episodes, in
// order) or fails with a clean error. This is the byte-granular version of
// the crash model — a torn write can stop anywhere.
func TestEveryPrefixOpensCleanly(t *testing.T) {
	_, data := writeJournal(t, 5)
	lastRecovered := -1
	for n := 0; n <= len(data); n++ {
		p := filepath.Join(t.TempDir(), "prefix.wal")
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(p, "fp")
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !strings.Contains(err.Error(), "journal:") {
				t.Fatalf("prefix %d: unexpected error %v", n, err)
			}
			continue
		}
		rec := j.Recovered()
		j.Close()
		if len(rec) < lastRecovered {
			t.Fatalf("prefix %d: recovered %d episodes, shorter than a shorter prefix's %d", n, len(rec), lastRecovered)
		}
		lastRecovered = len(rec)
		for i, e := range rec {
			if e.Key != string(rune('a'+i)) {
				t.Fatalf("prefix %d: episode %d key %q", n, i, e.Key)
			}
		}
	}
	if lastRecovered != 5 {
		t.Fatalf("full file recovered %d episodes, want 5", lastRecovered)
	}
}
