package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
)

// testSpec is the same fast campaign the registry tests use: random search
// on helmholtz/a100, 16-sample dataset, a few virtual seconds of budget.
func testSpec(tenant string, seed int64) campaign.Spec {
	return campaign.Spec{
		Tenant:      tenant,
		Method:      "opentuner",
		Stencil:     "helmholtz",
		Arch:        "a100",
		DatasetSize: 16,
		BudgetS:     4,
		Seed:        seed,
	}
}

func newTestServer(t *testing.T, opts campaign.Options) (*httptest.Server, *campaign.Registry) {
	t.Helper()
	reg, err := campaign.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		if err := reg.Close(); err != nil {
			t.Errorf("registry close: %v", err)
		}
	})
	return ts, reg
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("parse %s %s response %q: %v", method, url, raw.String(), err)
		}
	}
	return resp.StatusCode, raw.Bytes()
}

func submit(t *testing.T, ts *httptest.Server, spec campaign.Spec) SubmitResponse {
	t.Helper()
	var sr SubmitResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", spec, &sr)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d body %s", code, raw)
	}
	if sr.ID == "" {
		t.Fatal("submit returned no id")
	}
	return sr
}

// pollUntil polls the campaign until want (any terminal state fails fast).
func pollUntil(t *testing.T, ts *httptest.Server, id string, want campaign.State) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st CampaignStatus
		code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+id, nil, &st)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d body %s", id, code, raw)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("campaign %s landed in %s (reason %q), want %s", id, st.State, st.Reason, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return CampaignStatus{}
}

func TestServiceHappyPath(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{Slots: 2})
	sr := submit(t, ts, testSpec("acme", 1))
	st := pollUntil(t, ts, sr.ID, campaign.StateCompleted)
	if !st.Found || st.BestKey == "" || st.Canonical == "" {
		t.Fatalf("completed campaign missing result fields: %+v", st)
	}
	if st.Evals == 0 || st.SpentS <= 0 {
		t.Fatalf("completed campaign has empty accounting: %+v", st)
	}

	var lr ListResponse
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns", nil, &lr)
	if code != http.StatusOK || len(lr.Campaigns) != 1 {
		t.Fatalf("list: code %d campaigns %d", code, len(lr.Campaigns))
	}

	var tr TenantsResponse
	code, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/tenants", nil, &tr)
	if code != http.StatusOK || len(tr.Tenants) != 1 || tr.Tenants[0].Tenant != "acme" {
		t.Fatalf("tenants: code %d body %+v", code, tr)
	}
	if tr.Tenants[0].SpentS <= 0 {
		t.Fatalf("tenant ledger recorded no spend: %+v", tr.Tenants[0])
	}
}

func TestServiceBadJSON(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	for name, body := range map[string]string{
		"syntax":        `{"tenant": "acme",`,
		"unknown-field": `{"tenant": "acme", "warp_factor": 9}`,
		"wrong-type":    `{"tenant": 42}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Fatalf("error body not JSON with an error field: %v %+v", err, er)
			}
		})
	}
}

func TestServiceInvalidSpec(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	spec := testSpec("acme", 1)
	spec.Method = "gradient-descent"
	var er ErrorResponse
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", spec, &er)
	if code != http.StatusBadRequest || er.Error == "" {
		t.Fatalf("code %d error %q, want 400 with message", code, er.Error)
	}
}

func TestServiceUnknownCampaign(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/c999999"},
		{http.MethodPost, "/v1/campaigns/c999999/cancel"},
		{http.MethodPost, "/v1/campaigns/c999999/pause"},
		{http.MethodPost, "/v1/campaigns/c999999/resume"},
	} {
		var er ErrorResponse
		code, raw := doJSON(t, probe.method, ts.URL+probe.path, nil, &er)
		if code != http.StatusNotFound {
			t.Fatalf("%s %s: status %d body %s, want 404", probe.method, probe.path, code, raw)
		}
	}
}

func TestServiceDoubleCancelConflicts(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{Slots: 1})
	spec := testSpec("acme", 2)
	spec.BudgetS = 400
	sr := submit(t, ts, spec)
	var ok OKResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/cancel", nil, &ok)
	if code != http.StatusOK {
		t.Fatalf("first cancel: status %d body %s", code, raw)
	}
	pollUntil(t, ts, sr.ID, campaign.StateCanceled)
	var er ErrorResponse
	code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/cancel", nil, &er)
	if code != http.StatusConflict || er.Error == "" {
		t.Fatalf("double cancel: status %d error %q, want 409 with message", code, er.Error)
	}
}

func TestServiceTenantIsolation(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{DisableAutostart: true})
	ids := map[string][]string{}
	for i, tenant := range []string{"red", "blue", "red", "green", "blue", "red"} {
		sr := submit(t, ts, testSpec(tenant, int64(i)))
		ids[tenant] = append(ids[tenant], sr.ID)
	}
	for tenant, want := range map[string]int{"red": 3, "blue": 2, "green": 1} {
		var lr ListResponse
		code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns?tenant="+tenant, nil, &lr)
		if code != http.StatusOK {
			t.Fatalf("list %s: status %d", tenant, code)
		}
		if len(lr.Campaigns) != want {
			t.Fatalf("tenant %s sees %d campaigns, want %d", tenant, len(lr.Campaigns), want)
		}
		for _, st := range lr.Campaigns {
			if st.Tenant != tenant {
				t.Fatalf("tenant %s list leaked campaign of %s", tenant, st.Tenant)
			}
		}
	}
}

func TestServiceBudgetExhaustion(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{TenantBudgetS: 6, DisableAutostart: true})
	submit(t, ts, testSpec("capped", 1))
	var er ErrorResponse
	code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", testSpec("capped", 2), &er)
	if code != http.StatusTooManyRequests || er.Error == "" {
		t.Fatalf("over-budget submit: status %d error %q, want 429", code, er.Error)
	}
	// A different tenant still gets in.
	submit(t, ts, testSpec("fresh", 3))
}

func TestServicePauseResumeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{Slots: 1})
	spec := testSpec("acme", 4)
	spec.BudgetS = 400
	sr := submit(t, ts, spec)
	time.Sleep(40 * time.Millisecond)
	var ok OKResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/pause", nil, &ok)
	if code != http.StatusOK {
		var st CampaignStatus
		if c2, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+sr.ID, nil, &st); c2 == http.StatusOK && st.State == campaign.StateCompleted {
			t.Skip("campaign completed before the pause landed")
		}
		t.Fatalf("pause: status %d body %s", code, raw)
	}
	pollUntil(t, ts, sr.ID, campaign.StatePaused)
	code, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/resume", nil, &ok)
	if code != http.StatusOK {
		t.Fatalf("resume: status %d body %s", code, raw)
	}
	st := pollUntil(t, ts, sr.ID, campaign.StateCompleted)
	if st.Canonical == "" {
		t.Fatal("resumed campaign has no canonical result")
	}
}

func TestServiceHealth(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestServiceMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/tenants: %d, want 405", resp.StatusCode)
	}
}

func TestServiceListEmpty(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{})
	var lr ListResponse
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns", nil, &lr)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if !bytes.Contains(raw, []byte(`"campaigns": []`)) {
		t.Fatalf("empty list must serialize as [], got %s", raw)
	}
}
