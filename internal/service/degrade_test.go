package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/campaign"
	"repro/internal/vfs"
)

// getHealth fetches /v1/healthz and asserts it answers 200 — the daemon
// answering IS liveness; degradation rides in the body.
func getHealth(t *testing.T, ts *httptest.Server) HealthResponse {
	t.Helper()
	var h HealthResponse
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil, &h)
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d body %s (healthz must stay 200 while the process lives)", code, raw)
	}
	return h
}

// TestServiceStoreDegradedKeepsServing fills the "disk" under the shared
// result store (segment creation refused with ENOSPC) and proves graceful
// degradation end to end: campaigns keep completing for every tenant, the
// store serves read-only, and /v1/healthz reports status=degraded with the
// store subsystem called out — while still answering 200.
func TestServiceStoreDegradedKeepsServing(t *testing.T) {
	fsys := vfs.NewFaultFS(vfs.OS, 0,
		vfs.Fault{Op: vfs.OpCreate, Path: ".seg", Err: vfs.ENoSpace(), Rate: 1})
	reg, err := campaign.Open(t.TempDir(), campaign.Options{Slots: 2, EnableStore: true, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		// The sticky segment-create ENOSPC is the expected close error.
		if err := reg.Close(); err != nil && !vfs.IsNoSpace(err) {
			t.Errorf("registry close: %v", err)
		}
	})

	if h := getHealth(t, ts); h.Status != "ok" || h.Detail.Store != "ok" {
		t.Fatalf("healthy registry reported %+v", h)
	}

	// Tenant A's campaign completes despite the store's disk being gone: the
	// first publish flips the store read-only, misses keep measuring.
	sr := submit(t, ts, testSpec("acme", 1))
	pollUntil(t, ts, sr.ID, campaign.StateCompleted)

	h := getHealth(t, ts)
	if h.Status != "degraded" || !h.Detail.Degraded {
		t.Fatalf("store ENOSPC not surfaced: %+v", h)
	}
	if h.Detail.Store != "degraded" || h.Detail.StoreWriteErr == "" {
		t.Fatalf("per-subsystem detail missing the store failure: %+v", h.Detail)
	}
	if h.Detail.StorePutDrops == 0 {
		t.Fatalf("degraded store recorded no dropped publishes: %+v", h.Detail)
	}

	// Other tenants keep being served by the degraded daemon.
	sr2 := submit(t, ts, testSpec("fresh", 2))
	pollUntil(t, ts, sr2.ID, campaign.StateCompleted)

	var stats StoreResponse
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/store", nil, &stats); code != http.StatusOK {
		t.Fatalf("store stats: %d", code)
	}
	if !stats.Enabled || stats.Stats.WriteErr == "" {
		t.Fatalf("store stats hide the degradation: %+v", stats)
	}
}

// TestServiceSubmitNoSpace507 refuses one campaign's durable admission with
// ENOSPC and proves the honest status: that submit answers 507 Insufficient
// Storage, while submissions whose disk writes succeed — before and after —
// are admitted and run to completion.
func TestServiceSubmitNoSpace507(t *testing.T) {
	// Campaign ids are sequential (c000001, c000002, …): fail exactly the
	// second campaign's spec persist.
	fsys := vfs.NewFaultFS(vfs.OS, 0,
		vfs.Fault{Op: vfs.OpCreate, Path: "c000002/spec.json", Err: vfs.ENoSpace(), Rate: 1})
	reg, err := campaign.Open(t.TempDir(), campaign.Options{Slots: 2, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		if err := reg.Close(); err != nil {
			t.Errorf("registry close: %v", err)
		}
	})

	first := submit(t, ts, testSpec("acme", 1))

	var er ErrorResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns", testSpec("acme", 2), &er)
	if code != http.StatusInsufficientStorage || er.Error == "" {
		t.Fatalf("ENOSPC submit: status %d body %s, want 507 with message", code, raw)
	}

	// The refused submission took nothing down: the daemon admits the next
	// one and both admitted campaigns finish.
	third := submit(t, ts, testSpec("acme", 3))
	pollUntil(t, ts, first.ID, campaign.StateCompleted)
	pollUntil(t, ts, third.ID, campaign.StateCompleted)
	if h := getHealth(t, ts); h.Status != "ok" {
		t.Fatalf("a refused submit must not degrade the daemon: %+v", h)
	}
}
