package service

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// TestServiceStress hammers the API with hundreds of concurrent
// submit/poll/cancel/pause/resume campaigns across four tenants and asserts
// that every campaign reaches a clean terminal state, no campaign fails,
// and the tenant ledgers never overspend. Run it with -race; the campaign
// runner, scheduler, ledgers and HTTP layer all interleave here.
func TestServiceStress(t *testing.T) {
	total := 240
	workers := 8
	if testing.Short() {
		total = 32
		workers = 4
	}
	ts, reg := newTestServer(t, campaign.Options{Slots: 4, TenantBudgetS: 0})
	tenants := []string{"alpha", "beta", "gamma", "delta"}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				spec := testSpec(tenants[i%len(tenants)], int64(i%8))
				spec.Weight = float64(1 + i%3)
				sr := submit(t, ts, spec)

				// Interleave polls with the occasional interrupt.
				var st CampaignStatus
				if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+sr.ID, nil, &st); code != http.StatusOK {
					t.Errorf("poll %s: %d %s", sr.ID, code, raw)
					continue
				}
				switch {
				case i%5 == 0:
					// Cancel races completion: 200 and 409 are both legal,
					// anything else is a bug.
					code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/cancel", nil, nil)
					if code != http.StatusOK && code != http.StatusConflict {
						t.Errorf("cancel %s: %d %s", sr.ID, code, raw)
					}
				case i%7 == 0:
					code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/pause", nil, nil)
					if code != http.StatusOK && code != http.StatusConflict {
						t.Errorf("pause %s: %d %s", sr.ID, code, raw)
					}
					if code == http.StatusOK {
						// The pause request may still lose the race to
						// completion, so resume tolerates 409.
						deadline := time.Now().Add(60 * time.Second)
						for time.Now().Before(deadline) {
							doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns/"+sr.ID, nil, &st)
							if st.State != campaign.StateRunning && st.State != campaign.StatePending {
								break
							}
							time.Sleep(2 * time.Millisecond)
						}
						if st.State == campaign.StatePaused {
							if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/campaigns/"+sr.ID+"/resume", nil, nil); code != http.StatusOK {
								t.Errorf("resume %s: %d %s", sr.ID, code, raw)
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain: every campaign must reach a terminal state on its own.
	deadline := time.Now().Add(300 * time.Second)
	for {
		var lr ListResponse
		code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/campaigns", nil, &lr)
		if code != http.StatusOK {
			t.Fatalf("list: %d", code)
		}
		if len(lr.Campaigns) != total {
			t.Fatalf("list has %d campaigns, want %d", len(lr.Campaigns), total)
		}
		live := 0
		for _, st := range lr.Campaigns {
			if !st.State.Terminal() {
				live++
			}
		}
		if live == 0 {
			for _, st := range lr.Campaigns {
				if st.State == campaign.StateFailed {
					t.Errorf("campaign %s failed: %s", st.ID, st.Reason)
				}
				if st.State == campaign.StateCompleted && st.Canonical == "" {
					t.Errorf("campaign %s completed without a canonical result", st.ID)
				}
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("%d campaigns still live at deadline", live)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The ledger invariant must hold after everything settles, and the
	// scheduler must have seen every tenant.
	for _, snap := range reg.Ledgers().Snapshots() {
		if snap.BudgetS > 0 && snap.SpentS+snap.ReservedS > snap.BudgetS+1e-9 {
			t.Errorf("tenant %s overspent: %+v", snap.Tenant, snap)
		}
		if snap.ReservedS != 0 {
			t.Errorf("tenant %s has dangling reservation %g after all campaigns settled", snap.Tenant, snap.ReservedS)
		}
		if snap.SpentS <= 0 {
			t.Errorf("tenant %s recorded no spend", snap.Tenant)
		}
	}
	if vt := reg.Scheduler().VTimes(); len(vt) != len(tenants) {
		t.Errorf("scheduler saw %d tenants, want %d: %v", len(vt), len(tenants), vt)
	}
}
