// Package service is the stdlib-net/http serving layer over the campaign
// registry: submit, poll, cancel, pause, resume and list tuning campaigns
// for many tenants against one shared measurement pool. The wire types here
// are thin aliases of the registry's own JSON-tagged structs so the HTTP
// contract and the on-disk contract cannot drift apart.
package service

import (
	"repro/internal/campaign"
	"repro/internal/store"
)

// SubmitRequest is the POST /v1/campaigns body: a campaign spec. The
// fingerprint field is server-assigned and ignored on input.
type SubmitRequest = campaign.Spec

// CampaignStatus is the per-campaign wire representation, returned by
// submit, poll and list.
type CampaignStatus = campaign.Status

// SubmitResponse acknowledges an admitted campaign.
type SubmitResponse struct {
	ID     string         `json:"id"`
	Status CampaignStatus `json:"status"`
}

// ListResponse is the GET /v1/campaigns body.
type ListResponse struct {
	Campaigns []CampaignStatus `json:"campaigns"`
}

// TenantLedger is one tenant's budget position on the wire.
type TenantLedger = campaign.LedgerSnapshot

// TenantsResponse is the GET /v1/tenants body, sorted by tenant name.
type TenantsResponse struct {
	Tenants []TenantLedger `json:"tenants"`
}

// StoreResponse is the GET /v1/store body: whether the registry runs a
// shared result store and, if so, its live counters.
type StoreResponse struct {
	Enabled bool        `json:"enabled"`
	Stats   store.Stats `json:"stats"`
}

// HealthResponse is the GET /v1/healthz body: overall status plus the
// registry's per-subsystem health snapshot. Status is "ok" or "degraded";
// a degraded daemon is still serving — degradation is an operator signal
// (store gone read-only, directory fsyncs failing), never a reason to stop
// answering.
type HealthResponse struct {
	Status string          `json:"status"`
	Detail campaign.Health `json:"detail"`
}

// ErrorResponse is the uniform error body for every non-2xx status.
type ErrorResponse struct {
	Error string `json:"error"`
}

// OKResponse acknowledges a state-changing request (cancel/pause/resume)
// with the campaign's post-request status.
type OKResponse struct {
	ID     string         `json:"id"`
	Status CampaignStatus `json:"status"`
}
