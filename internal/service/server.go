package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/campaign"
	"repro/internal/vfs"
)

// Server serves the campaign registry over HTTP. It is a plain http.Handler
// — the caller owns the http.Server, its listener, and graceful shutdown
// (shut the HTTP server down first, then Close the registry so in-flight
// requests never observe a closed registry).
type Server struct {
	reg *campaign.Registry
	mux *http.ServeMux
}

// New builds the handler over a registry.
func New(reg *campaign.Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handlePoll)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /v1/store", s.handleStore)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with the status code; encoding errors after the header
// has gone out can only be dropped.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header already sent; the connection owns the failure
}

// writeErr maps registry errors onto HTTP statuses: unknown campaign → 404,
// illegal transition (double-cancel, resume-of-running, …) → 409, tenant
// budget exhausted → 429, registry shutting down → 503, ENOSPC-class disk
// exhaustion → 507 Insufficient Storage, anything else → 400.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, campaign.ErrUnknownCampaign):
		code = http.StatusNotFound
	case errors.Is(err, campaign.ErrTransition):
		code = http.StatusConflict
	case errors.Is(err, campaign.ErrTenantBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, campaign.ErrClosed):
		code = http.StatusServiceUnavailable
	case vfs.IsNoSpace(err):
		// A full disk refused the campaign's durable admission (mkdir or
		// spec/state persist). The honest status is 507: the request was
		// well-formed, the storage was not there for it. Other tenants'
		// campaigns keep running.
		code = http.StatusInsufficientStorage
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// maxBodyBytes bounds request bodies; specs are a few hundred bytes.
const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	body := io.LimitReader(r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	c, err := s.reg.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, SubmitResponse{ID: c.ID, Status: c.Status()})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	statuses := s.reg.List(r.URL.Query().Get("tenant"))
	if statuses == nil {
		statuses = []CampaignStatus{}
	}
	writeJSON(w, http.StatusOK, ListResponse{Campaigns: statuses})
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	c, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// mutate runs op against the campaign id and answers with its fresh status.
func (s *Server) mutate(w http.ResponseWriter, id string, op func(string) error) {
	if err := op(id); err != nil {
		writeErr(w, err)
		return
	}
	c, err := s.reg.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, OKResponse{ID: id, Status: c.Status()})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r.PathValue("id"), s.reg.Cancel)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r.PathValue("id"), s.reg.Pause)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.mutate(w, r.PathValue("id"), s.reg.ResumeCampaign)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	snaps := s.reg.Ledgers().Snapshots()
	if snaps == nil {
		snaps = []TenantLedger{}
	}
	writeJSON(w, http.StatusOK, TenantsResponse{Tenants: snaps})
}

func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	stats, enabled := s.reg.StoreStats()
	writeJSON(w, http.StatusOK, StoreResponse{Enabled: enabled, Stats: stats})
}

// handleHealth reports per-subsystem health. Always 200 — the daemon
// answering IS the liveness signal; degradation rides in the body so load
// balancers keep routing while operators see the disk trouble.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := s.reg.Health()
	status := "ok"
	if h.Degraded {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: status, Detail: h})
}
