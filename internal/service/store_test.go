package service

import (
	"net/http"
	"testing"

	"repro/internal/campaign"
)

// TestStoreEndpointDisabled: without EnableStore the endpoint still answers,
// reporting the store as disabled with zeroed counters.
func TestStoreEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{Slots: 1, DisableAutostart: true})
	var out StoreResponse
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/store", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out.Enabled || out.Stats.Keys != 0 {
		t.Fatalf("disabled store reported %+v", out)
	}
}

// TestStoreEndpointCounters: with the store enabled, completed campaigns
// populate it and both the store endpoint and the campaign poll expose the
// traffic counters.
func TestStoreEndpointCounters(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Options{Slots: 2, EnableStore: true})

	first := submit(t, ts, testSpec("acme", 5))
	st1 := pollUntil(t, ts, first.ID, campaign.StateCompleted)
	if st1.StoreMisses == 0 {
		t.Fatalf("cold campaign poll carries no store misses: %+v", st1)
	}

	second := submit(t, ts, testSpec("acme", 5)) // identical workload: hits
	st2 := pollUntil(t, ts, second.ID, campaign.StateCompleted)
	if st2.StoreHits == 0 {
		t.Fatalf("second campaign poll carries no store hits: %+v", st2)
	}

	var out StoreResponse
	code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/store", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !out.Enabled {
		t.Fatal("enabled store reported disabled")
	}
	if out.Stats.Keys == 0 || out.Stats.WriteErr != "" {
		t.Fatalf("store stats = %+v", out.Stats)
	}
}
