package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
)

// The kill/restart end-to-end test runs a real server in a child process
// (this same test binary re-exec'd with childRootEnv set), SIGKILLs it at
// an arbitrary moment with ~100 campaigns in flight, then reopens the
// registry and requires every campaign to finish with a report
// byte-identical to an uninterrupted run of the same spec.
const (
	childRootEnv  = "CSTUNERD_TEST_CHILD_ROOT"
	childSlotsEnv = "CSTUNERD_TEST_CHILD_SLOTS"
	addrFile      = "addr.txt"
)

func TestMain(m *testing.M) {
	if root := os.Getenv(childRootEnv); root != "" {
		runChildServer(root)
		return
	}
	os.Exit(m.Run())
}

// runChildServer is the child-process body: a registry-backed HTTP server
// whose address is published into the registry root. It never exits on its
// own — the parent SIGKILLs it.
func runChildServer(root string) {
	slots := 4
	if s := os.Getenv(childSlotsEnv); s != "" {
		fmt.Sscanf(s, "%d", &slots)
	}
	reg, err := campaign.Open(root, campaign.Options{Slots: slots})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: open:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: listen:", err)
		os.Exit(2)
	}
	tmp := filepath.Join(root, addrFile+".tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "child: addr:", err)
		os.Exit(2)
	}
	if err := os.Rename(tmp, filepath.Join(root, addrFile)); err != nil {
		fmt.Fprintln(os.Stderr, "child: addr:", err)
		os.Exit(2)
	}
	if err := http.Serve(ln, New(reg)); err != nil {
		fmt.Fprintln(os.Stderr, "child: serve:", err)
		os.Exit(2)
	}
}

// startChild launches the server child on root and waits for its address.
func startChild(t *testing.T, root string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), childRootEnv+"="+root, childSlotsEnv+"=4")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(filepath.Join(root, addrFile))
		if err == nil && len(data) > 0 {
			return cmd, string(data)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("child server never published its address")
	return nil, ""
}

func TestServiceKillRestartByteIdentical(t *testing.T) {
	total := 120
	killAfter := 50 * time.Millisecond
	if testing.Short() {
		total = 16
	}
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	const seeds = 12 // distinct campaign identities; fixtures and goldens shared

	// Golden pass: every distinct spec identity run uninterrupted in its own
	// registry. Tenant and weight are fairness metadata — they never touch
	// measurement results — so goldens are keyed by seed alone.
	goldens := map[int64]string{}
	{
		reg, err := campaign.Open(t.TempDir(), campaign.Options{Slots: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ids []string
		var specSeeds []int64
		for s := int64(0); s < seeds; s++ {
			c, err := reg.Submit(killSpec("golden", s))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, c.ID)
			specSeeds = append(specSeeds, s)
		}
		for i, id := range ids {
			c, err := reg.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			waitTerminal(t, c)
			if c.State() != campaign.StateCompleted {
				t.Fatalf("golden campaign seed %d ended %s", specSeeds[i], c.State())
			}
			_, canonical, _ := c.Result()
			goldens[specSeeds[i]] = canonical
		}
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Live pass: a real server process, hundreds of campaigns, SIGKILL.
	root := t.TempDir()
	cmd, addr := startChild(t, root)
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}
	type sub struct {
		id   string
		seed int64
	}
	var subs []sub
	for i := 0; i < total; i++ {
		spec := killSpec(tenants[i%len(tenants)], int64(i%seeds))
		spec.Weight = float64(1 + i%3)
		var sr SubmitResponse
		code, raw, err := doJSONClient(client, http.MethodPost, base+"/v1/campaigns", spec, &sr)
		if err != nil || code != http.StatusCreated {
			t.Fatalf("submit %d: code %d err %v body %s", i, code, err, raw)
		}
		subs = append(subs, sub{id: sr.ID, seed: int64(i % seeds)})
	}
	// Arbitrary kill point: early light campaigns have completed, the heavy
	// ones are mid-episode, late submissions are still pending.
	time.Sleep(killAfter)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	// Restart: reopen the same root in-process. The scan must resume every
	// interrupted campaign through journal replay.
	if err := os.Remove(filepath.Join(root, addrFile)); err != nil {
		t.Fatal(err)
	}
	reg, err := campaign.Open(root, campaign.Options{Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	resumed := 0
	for _, s := range subs {
		c, err := reg.Get(s.id)
		if err != nil {
			t.Fatalf("campaign %s lost across the kill: %v", s.id, err)
		}
		waitTerminal(t, c)
		if c.State() != campaign.StateCompleted {
			t.Errorf("campaign %s ended %s (reason %q), want completed", s.id, c.State(), c.Status().Reason)
			continue
		}
		if st := c.Status(); st.Replayed > 0 {
			resumed++
		}
		_, canonical, ok := c.Result()
		if !ok {
			t.Errorf("campaign %s completed without a result", s.id)
			continue
		}
		if canonical != goldens[s.seed] {
			t.Errorf("campaign %s (seed %d): canonical differs from uninterrupted run\n got: %s\nwant: %s",
				s.id, s.seed, canonical, goldens[s.seed])
		}
	}
	t.Logf("%d/%d campaigns resumed journaled episodes after the kill", resumed, total)
	if resumed == 0 {
		t.Error("no campaign replayed journaled work: the kill never interrupted anything, so the test proved nothing about recovery")
	}

	// Per-tenant ledgers must never overspend, and with everything settled
	// no reservation may dangle.
	for _, snap := range reg.Ledgers().Snapshots() {
		if snap.BudgetS > 0 && snap.SpentS+snap.ReservedS > snap.BudgetS+1e-9 {
			t.Errorf("tenant %s overspent: %+v", snap.Tenant, snap)
		}
		if snap.ReservedS != 0 {
			t.Errorf("tenant %s has dangling reservation: %+v", snap.Tenant, snap)
		}
	}
}

// killSpec is the e2e campaign. Seeds below 8 are light (~30 evals, done in
// tens of milliseconds); seeds 8+ are heavy (~200 evals) and are reliably
// mid-run when the kill lands, so the restart genuinely exercises journal
// replay rather than just reloading finished results.
func killSpec(tenant string, seed int64) campaign.Spec {
	budget := 50.0
	if seed >= 8 {
		budget = 300
	}
	return campaign.Spec{
		Tenant:      tenant,
		Method:      "opentuner",
		Stencil:     "helmholtz",
		Arch:        "a100",
		DatasetSize: 16,
		BudgetS:     budget,
		Seed:        seed,
	}
}

func waitTerminal(t *testing.T, c *campaign.Campaign) {
	t.Helper()
	deadline := time.Now().Add(300 * time.Second)
	for time.Now().Before(deadline) {
		if c.State().Terminal() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached a terminal state (stuck in %s)", c.ID, c.State())
}

// doJSONClient is doJSON against an explicit client and URL (the child
// server is not an httptest.Server).
func doJSONClient(client *http.Client, method, url string, body any, out any) (int, []byte, error) {
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, raw, err
		}
	}
	return resp.StatusCode, raw, nil
}
