// Package cstuner is a from-scratch Go reproduction of "csTuner: Scalable
// Auto-tuning Framework for Complex Stencil Computation on GPUs" (Sun et
// al., IEEE CLUSTER 2021).
//
// The repository contains the complete system the paper describes plus every
// substrate it depends on:
//
//   - the csTuner pipeline — statistic-based parameter grouping (CV +
//     Algorithm 1), PCC metric combination (Algorithm 2), PMNF-guided
//     search-space sampling, and an island-model genetic algorithm with
//     approximation-based stopping (internal/core and its dependencies);
//   - the eight Table III benchmark stencils with a goroutine-parallel CPU
//     reference executor (internal/stencil);
//   - an analytical compiler and GPU performance simulator standing in for
//     the paper's nvcc/A100/V100/Nsight testbed (internal/kernel,
//     internal/gpu, internal/sim) — see DESIGN.md for the substitution
//     rationale;
//   - the three comparator auto-tuners: OpenTuner, Garvey (with a regression
//     random forest) and Artemis (internal/baselines/...);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation (internal/harness, cmd/experiments).
//
// This root package is the stable facade: it exposes the operations a
// downstream user needs — enumerate the stencil suite, construct a tuning
// session for a stencil on a simulated GPU, run csTuner or any comparator,
// and inspect the result — without reaching into internal packages.
package cstuner
