// Cpustencil: tune the same stencil on a *CPU* — the paper's second
// future-work claim (Sec. VII): "extend csTuner to support other hardware
// such as CPU ... we only need to adjust the optimization space according to
// the target hardware." The optimization space here is OpenMP threads,
// 3-D cache-blocking tiles, SIMD vectorization and unrolling; the pipeline
// is byte-for-byte the same one that tunes CUDA kernels.
//
//	go run ./examples/cpustencil
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	st := cstuner.StencilByName("hypterm")
	arch := cstuner.XeonE52680v4() // the paper's own host CPU (Table II)
	w, err := cstuner.NewCPUStencil(st, arch)
	if err != nil {
		log.Fatal(err)
	}
	sp := w.Space()

	naiveSet := sp.Default()
	naive, err := w.Measure(naiveSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil %s on %s (%.0f GFLOPS peak)\n\n", st.Name, arch.Name, arch.PeakFP64GFLOPS())
	fmt.Printf("naive OpenMP  %-50s %9.2f ms\n", sp.Format(naiveSet), naive)

	cfg := cstuner.DefaultConfig()
	cfg.DatasetSize = 96
	report, err := cstuner.TuneCPU(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned         %-50s %9.2f ms\n", sp.Format(report.Best), report.BestMS)
	fmt.Printf("\nspeedup: %.2fx with %d measurements\n", naive/report.BestMS, report.Evaluations)

	// Inspect what the tuner learned about this hardware's parameter
	// couplings — groups come from measured CVs, not expert knowledge.
	names := sp.Names()
	fmt.Printf("discovered parameter groups: ")
	for gi, g := range report.Groups {
		if gi > 0 {
			fmt.Printf(" | ")
		}
		for i, p := range g {
			if i > 0 {
				fmt.Printf(",")
			}
			fmt.Printf("%s", names[p])
		}
	}
	fmt.Println()
}
