// Temporalblocking: tune AN5D-style high-degree temporal blocking with
// csTuner — the paper's "more optimization techniques" future-work claim
// (Sec. VII). A 128-step Jacobi run is advanced several time steps per
// kernel launch; the tuner balances the DRAM traffic saved against the
// trapezoid's redundant halo computation.
//
//	go run ./examples/temporalblocking
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	const steps = 128
	for _, name := range []string{"j3d7pt", "hypterm"} {
		st := cstuner.StencilByName(name)
		w, err := cstuner.NewTemporal(st, cstuner.A100(), steps)
		if err != nil {
			log.Fatal(err)
		}
		sp := w.Space()

		naive, err := w.Measure(sp.Default()) // degree 1: one launch per step
		if err != nil {
			log.Fatal(err)
		}
		cfg := cstuner.DefaultConfig()
		cfg.DatasetSize = 96
		rep, err := cstuner.TuneTemporal(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %d steps: naive %8.1f ms -> tuned %8.1f ms (%.2fx)  %s\n",
			name, steps, naive, rep.BestMS, naive/rep.BestMS, sp.Format(rep.Best))
	}
	fmt.Println("\norder-1 j3d7pt should adopt a high degree; order-4 hypterm should stay shallow.")
}
