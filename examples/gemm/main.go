// GEMM: tune a non-stencil workload — tiled double-precision matrix
// multiplication — with the unmodified csTuner pipeline. This realizes the
// paper's future-work claim (Sec. VII): "apply csTuner to other domains
// (e.g., tensor optimizations in deep learning) ... we only need to adjust
// the optimization space".
//
//	go run ./examples/gemm
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	// A 4096³ DGEMM on the simulated A100: 137 GFLOP per launch.
	w, err := cstuner.NewGEMM(4096, 4096, 4096, cstuner.A100())
	if err != nil {
		log.Fatal(err)
	}
	sp := w.Space()

	naiveSet := sp.Default()
	naive, err := w.Measure(naiveSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive  %-60s %8.2f ms\n", sp.Format(naiveSet), naive)

	cfg := cstuner.DefaultConfig()
	cfg.DatasetSize = 96
	report, err := cstuner.TuneGEMM(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned  %-60s %8.2f ms\n", sp.Format(report.Best), report.BestMS)
	fmt.Printf("\nspeedup over naive: %.2fx\n", naive/report.BestMS)
	fmt.Printf("parameter groups discovered from the GEMM dataset:\n  %s\n",
		formatGroups(report.Groups, sp.Names()))
	fmt.Printf("measurements spent: %d\n", report.Evaluations)

	// Achieved fraction of peak, the number a GEMM tuner is judged by.
	flops := 2.0 * 4096 * 4096 * 4096
	achieved := flops / (report.BestMS * 1e6) // FLOPs per ns == GFLOP/s
	fmt.Printf("achieved %.0f GFLOP/s of %.0f peak (%.0f%%)\n",
		achieved, cstuner.A100().PeakFP64GFLOPS(),
		100*achieved/cstuner.A100().PeakFP64GFLOPS())
}

func formatGroups(groups [][]int, names []string) string {
	out := ""
	for gi, g := range groups {
		if gi > 0 {
			out += " | "
		}
		for i, p := range g {
			if i > 0 {
				out += ","
			}
			out += names[p]
		}
	}
	return out
}
