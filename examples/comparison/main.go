// Comparison: race all four auto-tuning methods — csTuner, Garvey,
// OpenTuner and Artemis — head-to-head on one stencil under the same
// virtual time budget (the paper's iso-time protocol, Sec. V-C).
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"sort"

	cstuner "repro"
)

func main() {
	const (
		stencilName = "addsgd6"
		budgetS     = 80.0 // virtual seconds of compile+run time
		seed        = 7
	)
	session, err := cstuner.NewSessionFor(stencilName, "a100")
	if err != nil {
		log.Fatal(err)
	}

	naive, err := session.Measure(session.DefaultSetting())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stencil %s on A100, %.0fs budget, naive baseline %.3f ms\n\n",
		stencilName, budgetS, naive)

	type row struct {
		method string
		ms     float64
	}
	var rows []row
	for _, method := range []string{
		cstuner.MethodCsTuner, cstuner.MethodGarvey,
		cstuner.MethodOpenTuner, cstuner.MethodArtemis,
	} {
		set, ms, err := session.RunComparator(method, budgetS, seed)
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		rows = append(rows, row{method, ms})
		fmt.Printf("%-10s best %.3f ms  setting %s\n", method, ms, set)
	}

	sort.Slice(rows, func(a, b int) bool { return rows[a].ms < rows[b].ms })
	fmt.Printf("\nranking under iso-time:\n")
	for i, r := range rows {
		fmt.Printf("  %d. %-10s %.3f ms (%.2fx over naive)\n", i+1, r.method, r.ms, naive/r.ms)
	}
}
