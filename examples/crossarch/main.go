// Crossarch: the paper's portability study (Sec. V-D) in miniature — tune
// the same stencils on the A100 and V100 models and show that csTuner's
// pipeline adapts without any expert re-tuning: the dataset is re-collected
// on the new hardware and the same statistics drive the search.
//
//	go run ./examples/crossarch
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	stencils := []string{"j3d7pt", "cheby", "addsgd4"}
	archs := []string{"a100", "v100"}

	fmt.Printf("%-10s %-6s %12s %12s %9s\n", "stencil", "arch", "naive ms", "tuned ms", "speedup")
	for _, name := range stencils {
		chosen := map[string]cstuner.Setting{}
		for _, arch := range archs {
			session, err := cstuner.NewSessionFor(name, arch)
			if err != nil {
				log.Fatal(err)
			}
			naive, err := session.Measure(session.DefaultSetting())
			if err != nil {
				log.Fatal(err)
			}
			cfg := cstuner.DefaultConfig()
			cfg.DatasetSize = 96
			report, err := session.Tune(cfg)
			if err != nil {
				log.Fatal(err)
			}
			chosen[arch] = report.Best
			fmt.Printf("%-10s %-6s %12.3f %12.3f %8.2fx\n",
				name, arch, naive, report.BestMS, naive/report.BestMS)
		}
		// Portability check: how much does the A100's winner lose when
		// carried to the V100 unchanged? A large gap is exactly why
		// re-tuning per architecture matters.
		v100, err := cstuner.NewSessionFor(name, "v100")
		if err != nil {
			log.Fatal(err)
		}
		carried, err := v100.Measure(chosen["a100"])
		if err != nil {
			fmt.Printf("%-10s carried A100 setting is invalid on V100: %v\n", name, err)
			continue
		}
		native, err := v100.Measure(chosen["v100"])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s carrying the A100 winner to V100 costs %+.1f%%\n\n",
			name, 100*(carried-native)/native)
	}
}
