// Customstencil: define a brand-new stencil — a 3-D anisotropic diffusion
// operator that is not part of the paper's Table III suite — and let csTuner
// find its optimal GPU parameters. This exercises the paper's generality
// claim: nothing in the pipeline is specific to the benchmark set.
//
//	go run ./examples/customstencil
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	// An order-2 anisotropic diffusion step: a star on the concentration
	// field plus centre reads of a spatially-varying diffusivity tensor
	// (three diagonal components) — 4 inputs, 1 output, 64 FLOPs/point.
	taps := append(cstuner.StarTaps(2, 0),
		append(cstuner.CenterTap(1, 0.4),
			append(cstuner.CenterTap(2, 0.35),
				cstuner.CenterTap(3, 0.25)...)...)...)

	diffusion := &cstuner.Stencil{
		Name: "anisodiff",
		NX:   384, NY: 384, NZ: 384,
		Order: 2, FLOPs: 64,
		Inputs: 4, Outputs: 1,
		Taps:   taps,
		Coeffs: 9,
	}
	if err := diffusion.Validate(); err != nil {
		log.Fatal(err)
	}

	session, err := cstuner.NewSession(diffusion, cstuner.A100())
	if err != nil {
		log.Fatal(err)
	}

	naiveMS, err := session.Measure(session.DefaultSetting())
	if err != nil {
		log.Fatal(err)
	}

	cfg := cstuner.DefaultConfig()
	cfg.DatasetSize = 96 // a smaller offline dataset still groups well
	report, err := session.Tune(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stencil:       %s\n", diffusion)
	fmt.Printf("groups:        %s\n", cstuner.FormatGroups(report.Groups))
	fmt.Printf("naive:         %.3f ms\n", naiveMS)
	fmt.Printf("tuned:         %.3f ms (%.2fx)\n", report.BestMS, naiveMS/report.BestMS)
	fmt.Printf("tuned setting: %s\n", report.Best)

	// Inspect the generated CUDA for the winner.
	src, err := session.EmitCUDA(report.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated kernel header:\n")
	for i, line := range splitN(src, 6) {
		fmt.Printf("  %d| %s\n", i+1, line)
	}
}

// splitN returns the first n lines of s.
func splitN(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
