// Resume: crash-safe tuning. Every measurement episode is write-ahead
// logged to a journal on disk, so a campaign killed at any instant —
// Ctrl-C, preemption, OOM — resumes where it stopped instead of re-paying
// for the measurements it already made.
//
// The demo interrupts a run mid-flight with an aggressive context
// deadline (a stand-in for kill -9: the journal is fsync'd before any
// result is accounted, so the two are equivalent), then calls ResumeTune
// again with the same arguments. The resumed run replays every journaled
// episode without touching the simulator and finishes with a report
// identical to an uninterrupted run's.
//
//	go run ./examples/resume
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	cstuner "repro"
)

func main() {
	const (
		stencilName = "helmholtz"
		budgetS     = 30.0 // virtual seconds of compile+run time
	)
	session, err := cstuner.NewSessionFor(stencilName, "a100")
	if err != nil {
		log.Fatal(err)
	}
	cfg := cstuner.DefaultConfig()
	cfg.DatasetSize = 64
	cfg.EmitKernels = false

	dir, err := os.MkdirTemp("", "cstuner-resume")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	// Reference: one uninterrupted run.
	golden, err := session.ResumeTune(context.Background(),
		filepath.Join(dir, "golden.wal"), cfg, budgetS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: best %.4f ms after %d evaluations\n",
		golden.BestMS, golden.Engine.Evaluations)

	// The same campaign, crashed over and over until it gets through.
	journal := filepath.Join(dir, "campaign.wal")
	crashes := 0
	deadline := 20 * time.Millisecond
	var rep *cstuner.Report
	for {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		rep, err = session.ResumeTune(ctx, journal, cfg, budgetS)
		cancel()
		if err == nil {
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
		crashes++
		fmt.Printf("  crash %d: killed mid-run, journal holds the progress\n", crashes)
		deadline += 10 * time.Millisecond
	}
	fmt.Printf("after %d crashes:  best %.4f ms after %d evaluations\n",
		crashes, rep.BestMS, rep.Engine.Evaluations)

	if rep.Best.Key() != golden.Best.Key() || rep.BestMS != golden.BestMS {
		log.Fatalf("resumed result diverged from uninterrupted run")
	}
	fmt.Println("resumed result is identical to the uninterrupted run")
}
