// Quickstart: auto-tune one benchmark stencil on the simulated A100 with
// the paper's default csTuner configuration and print what the pipeline did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cstuner "repro"
)

func main() {
	// A session binds a stencil to a modelled GPU.
	session, err := cstuner.NewSessionFor("helmholtz", "a100")
	if err != nil {
		log.Fatal(err)
	}

	// The untuned baseline: a generic 256-thread block, no optimizations.
	naive := session.DefaultSetting()
	naiveMS, err := session.Measure(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive setting: %.3f ms\n", naiveMS)

	// Run the full csTuner pipeline: dataset → grouping → metric
	// combination → PMNF sampling → per-group genetic search.
	cfg := cstuner.DefaultConfig()
	report, err := session.Tune(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("parameter groups: %s\n", cstuner.FormatGroups(report.Groups))
	fmt.Printf("sampled space:    %d settings (%d kernels generated)\n",
		report.SampledSize, report.GeneratedCUDA)
	fmt.Printf("search:           %d measurements\n", report.Evaluations)
	fmt.Printf("tuned setting:    %s\n", report.Best)
	fmt.Printf("tuned time:       %.3f ms (%.2fx speedup over naive)\n",
		report.BestMS, naiveMS/report.BestMS)
}
