package cstuner

import (
	"bytes"
	"strings"
	"testing"
)

func TestSuiteAndLookup(t *testing.T) {
	if len(Suite()) != 8 {
		t.Fatalf("suite size %d", len(Suite()))
	}
	if StencilByName("hypterm") == nil {
		t.Fatal("hypterm missing")
	}
	if StencilByName("nope") != nil {
		t.Fatal("unknown stencil should be nil")
	}
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, A100()); err == nil {
		t.Fatal("nil stencil should error")
	}
	if _, err := NewSession(StencilByName("cheby"), nil); err == nil {
		t.Fatal("nil arch should error")
	}
	if _, err := NewSessionFor("nope", "a100"); err == nil {
		t.Fatal("unknown stencil name should error")
	}
	if _, err := NewSessionFor("cheby", "h100"); err == nil {
		t.Fatal("unknown arch name should error")
	}
	bad := *StencilByName("cheby")
	bad.FLOPs = 0
	if _, err := NewSession(&bad, A100()); err == nil {
		t.Fatal("invalid stencil should error")
	}
}

func TestSessionMeasureAndMetrics(t *testing.T) {
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	if s.Stencil().Name != "j3d7pt" {
		t.Fatal("wrong stencil")
	}
	set := s.DefaultSetting()
	if err := s.Validate(set); err != nil {
		t.Fatal(err)
	}
	ms, err := s.Measure(set)
	if err != nil || ms <= 0 {
		t.Fatalf("Measure = %v, %v", ms, err)
	}
	ms2, metrics, err := s.Metrics(set)
	if err != nil || ms2 != ms {
		t.Fatalf("Metrics time = %v, %v", ms2, err)
	}
	if len(metrics) < 15 {
		t.Fatalf("only %d metrics", len(metrics))
	}
	src, err := s.EmitCUDA(set)
	if err != nil || !strings.Contains(src, "__global__") {
		t.Fatalf("EmitCUDA: %v", err)
	}
}

func TestSessionTune(t *testing.T) {
	s, err := NewSessionFor("helmholtz", "a100")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 512
	cfg.GA.MaxGenerations = 8
	cfg.EmitKernels = false
	rep, err := s.Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best == nil || rep.BestMS <= 0 {
		t.Fatal("no result")
	}
	// The tuned kernel must beat the naive default clearly.
	def, err := s.Measure(s.DefaultSetting())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestMS >= def {
		t.Fatalf("tuned %.3f not better than default %.3f", rep.BestMS, def)
	}
	if FormatGroups(rep.Groups) == "" {
		t.Fatal("empty group format")
	}
}

func TestSessionTuneWithBudget(t *testing.T) {
	s, err := NewSessionFor("j3d27pt", "v100")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DatasetSize = 64
	cfg.Sampling.PoolSize = 512
	cfg.EmitKernels = false
	rep, err := s.TuneWithBudget(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 20 virtual seconds at 1.5s compile is ~13 evaluations.
	if rep.Evaluations > 20 {
		t.Fatalf("budget ignored: %d evals", rep.Evaluations)
	}
}

func TestRunComparator(t *testing.T) {
	s, err := NewSessionFor("j3d7pt", "a100")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{MethodArtemis, MethodGarvey} {
		set, ms, err := s.RunComparator(method, 20, 3)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if set == nil || ms <= 0 {
			t.Fatalf("%s: degenerate result", method)
		}
		if err := s.Validate(set); err != nil {
			t.Fatalf("%s: invalid setting: %v", method, err)
		}
	}
	if _, _, err := s.RunComparator("banana", 5, 1); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestWriteTableIII(t *testing.T) {
	var buf bytes.Buffer
	WriteTableIII(&buf)
	if !strings.Contains(buf.String(), "addsgd6") {
		t.Fatal("table missing addsgd6")
	}
}
